// Command calibrate validates the calibrated models and, with -out,
// runs the tiered-evaluation error-bounding harness.
//
// Usage:
//
//	calibrate                        print the model-vs-target validation
//	                                 tables (analytic catalog, simulator
//	                                 cross-checks) on the parallel engine
//	calibrate -out calibration.json  measure the analytic surrogate's
//	                                 error against both simulators over a
//	                                 grid, record every simulated point as
//	                                 an anchor, and write the calibration
//	                                 the tiered evaluator loads
//	                                 (internal/tier, soproc -calibration,
//	                                 soprocd -calibration)
//	calibrate -out c.json -cores 16 -llc 4 -nets crossbar -figures=false
//	                                 small grid, no figure-suite anchors
//	calibrate -regions 2             coarser error regions (1 = kind/core,
//	                                 2 = +net, 3 = +cores/LLC buckets)
//
// The harness grid is workloads x -cores x -llc x -nets on both the
// statistical and the structural simulator; -figures (default true)
// additionally replays the full figure suite under a recording engine
// so every figure point becomes an anchor — after which tiered exact
// regeneration (soproc -all -tier exact) serves the whole suite from
// the calibration file, byte-identical, without re-simulating.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scaleout/internal/figures"
	"scaleout/internal/noc"
	"scaleout/internal/store"
	"scaleout/internal/tier"
)

func main() {
	out := flag.String("out", "", "write calibration JSON here and skip the validation tables")
	regions := flag.Int("regions", tier.DefaultGranularity, "error-region granularity: 1 = kind/core, 2 = +net, 3 = +cores/LLC buckets")
	safety := flag.Float64("safety", tier.DefaultSafety, "band margin multiplied into each region's max observed error")
	coresList := flag.String("cores", "16,32,64", "comma-separated core counts for the calibration grid (with -out)")
	llcList := flag.String("llc", "2,4,8", "comma-separated LLC sizes in MB for the calibration grid (with -out)")
	netsList := flag.String("nets", "crossbar,mesh", "comma-separated interconnects for the calibration grid (with -out)")
	withFigures := flag.Bool("figures", true, "record the full figure suite as anchors (with -out)")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	useStore := flag.Bool("store", false, "round-trip anchors through the persistent result store in -store-dir: stored points anchor without re-simulating, simulated points are written through (with -out)")
	storeDir := flag.String("store-dir", store.DefaultDir, "persistent result store directory (with -store)")
	flag.Parse()

	if *out != "" {
		if err := runHarness(*out, *regions, *safety, *coresList, *llcList, *netsList, *withFigures, *parallel, *useStore, *storeDir); err != nil {
			fail(err)
		}
		return
	}
	if err := runChecks(*parallel); err != nil {
		fail(err)
	}
}

// runHarness is the error-bounding calibration: grid + optional figure
// suite through tier.Calibrate, summary on stdout, JSON to out.
func runHarness(out string, regions int, safety float64, coresList, llcList, netsList string, withFigures bool, parallel int, useStore bool, storeDir string) error {
	cores, err := parseInts(coresList)
	if err != nil {
		return fmt.Errorf("-cores: %w", err)
	}
	llc, err := parseFloats(llcList)
	if err != nil {
		return fmt.Errorf("-llc: %w", err)
	}
	nets, err := parseNets(netsList)
	if err != nil {
		return fmt.Errorf("-nets: %w", err)
	}
	opts := tier.Options{
		Cores:       cores,
		LLCMB:       llc,
		Nets:        nets,
		Granularity: regions,
		Safety:      safety,
		Workers:     parallel,
	}
	if useStore {
		st, err := store.Open(storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		opts.Store = st
	}
	if withFigures {
		opts.Suites = func(ctx context.Context) error {
			_, err := figures.RunAllContext(ctx)
			return err
		}
	}
	cal, err := tier.Calibrate(context.Background(), opts)
	if err != nil {
		return err
	}
	if err := cal.Save(out); err != nil {
		return err
	}
	fmt.Printf("calibrate: %d regions, %d sim anchors, %d structural anchors -> %s\n",
		len(cal.Regions), len(cal.SimAnchors), len(cal.StructuralAnchors), out)
	for _, r := range cal.Regions {
		fmt.Printf("  %-40s samples %4d  max %6.3f  mean %6.3f\n",
			r.Key, r.Samples, r.MaxRelErr, r.MeanRelErr)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseNets(s string) ([]noc.Kind, error) {
	var out []noc.Kind
	for _, f := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(f)) {
		case "ideal":
			out = append(out, noc.Ideal)
		case "crossbar":
			out = append(out, noc.Crossbar)
		case "mesh":
			out = append(out, noc.Mesh)
		case "flattened-butterfly", "fbfly":
			out = append(out, noc.FlattenedButterfly)
		case "noc-out", "nocout":
			out = append(out, noc.NOCOut)
		default:
			return nil, fmt.Errorf("unknown net %q", f)
		}
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
