package main

import (
	"context"
	"fmt"

	"scaleout/internal/analytic"
	"scaleout/internal/chip"
	"scaleout/internal/core"
	"scaleout/internal/exp"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// runChecks prints the model-vs-target validation tables. The analytic
// sections are microsecond-cheap and run inline; the simulator
// cross-checks fan out through the experiment engine, so repeated
// configurations are simulated once and the loops use every worker.
func runChecks(parallel int) error {
	ws := workload.Suite()
	ctx := exp.WithEngine(context.Background(), exp.New(parallel))

	// Fig 2.1: conventional core IPC, 4 cores, 4MB? use their sim config: 4 cores 4MB crossbar
	fmt.Println("== Fig2.1-ish: per-workload conventional IPC (4c,4MB,xbar)")
	for _, w := range ws {
		d := analytic.NewDesign(tech.Conventional, 4, 4, noc.Crossbar)
		fmt.Printf("  %-16s %.2f\n", w.Name, analytic.PerCoreIPC(w, d))
	}
	fmt.Println("== Catalog 40nm (target PD: conv .026 tiledO .060 llcO .084 IR .086 idealO .101 SO-O .092 | tiledI .099 llcI .131 IRI .145 idealI .167 SO-I .155)")
	for _, s := range chip.Catalog(tech.N40(), ws) {
		fmt.Printf("  %-28s PD %.3f cores %3d llc %4.0f MC %d die %5.0f pow %4.0f ppw %.2f\n",
			s.Name(), s.PD(ws), s.Cores, s.LLCMB, s.MemChannels, s.DieArea(), s.Power(), s.PerfPerWatt(ws))
	}
	fmt.Println("== Catalog 20nm (targets: conv .067 tiledO .206 llcO .258 IR .294 ideal .366 SO .339 | tiledI .227 llcI .360 IRI .362 idealI .518 SO-I .441)")
	for _, s := range chip.Catalog(tech.N20(), ws) {
		fmt.Printf("  %-28s PD %.3f cores %3d llc %4.0f MC %d die %5.0f pow %4.0f ppw %.2f\n",
			s.Name(), s.PD(ws), s.Cores, s.LLCMB, s.MemChannels, s.DieArea(), s.Power(), s.PerfPerWatt(ws))
	}
	fmt.Println("== Pod sweep OoO 40nm (expect opt 32c/4MB xbar, 16c/4MB within 5%)")
	pts := core.Sweep(core.SweepSpace{Core: tech.OoO, MaxCores: 64, LLCSizes: []float64{1, 2, 4, 8}, Nets: []noc.Kind{noc.Crossbar}}, tech.N40(), ws)
	for _, p := range pts {
		if p.Pod.Cores >= 8 {
			fmt.Printf("  %-10s PD %.3f\n", p.Pod, p.PD)
		}
	}
	fmt.Println("== Pod sweep IO 40nm (expect opt 32c/2MB xbar)")
	pts = core.Sweep(core.SweepSpace{Core: tech.InOrder, MaxCores: 64, LLCSizes: []float64{1, 2, 4, 8}, Nets: []noc.Kind{noc.Crossbar}}, tech.N40(), ws)
	for _, p := range pts {
		if p.Pod.Cores >= 16 {
			fmt.Printf("  %-10s PD %.3f\n", p.Pod, p.PD)
		}
	}
	fmt.Println("== per-workload OoO pod (16c/4MB) demand GB/s (target worst ~9.4) and IO pod (32c/2MB) (target ~15-17)")
	for _, w := range ws {
		dO := analytic.NewDesign(tech.OoO, 16, 4, noc.Crossbar)
		dI := analytic.NewDesign(tech.InOrder, 32, 2, noc.Crossbar)
		fmt.Printf("  %-16s OoO %.1f  IO %.1f\n", w.Name,
			w.PeakOffChipGBs(tech.OoO, 4, 16, analytic.PerCoreIPC(w, dO)),
			w.PeakOffChipGBs(tech.InOrder, 2, 32, analytic.PerCoreIPC(w, dI)))
	}
	// pod bw
	podO := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	podI := core.Pod{Core: tech.InOrder, Cores: 32, LLCMB: 2, Net: noc.Crossbar}
	fmt.Printf("pod OoO peak BW %.1f GB/s (target ~9.4x1.25), pod IO %.1f (target ~15x1.2=18)\n", podO.PeakBandwidthGBs(ws), podI.PeakBandwidthGBs(ws))
	so, _ := core.Compose(tech.N40(), podO, ws)
	fmt.Printf("Compose OoO 40nm: pods %d MC %d die %.0f pow %.0f limit %s\n", so.Pods, so.MemChannels, so.DieArea(), so.Power(), so.Limit)
	si, _ := core.Compose(tech.N40(), podI, ws)
	fmt.Printf("Compose IO 40nm: pods %d MC %d die %.0f pow %.0f limit %s\n", si.Pods, si.MemChannels, si.DieArea(), si.Power(), si.Limit)
	so2, _ := core.Compose(tech.N20(), podO, ws)
	fmt.Printf("Compose OoO 20nm: pods %d MC %d die %.0f pow %.0f limit %s\n", so2.Pods, so2.MemChannels, so2.DieArea(), so2.Power(), so2.Limit)
	si2, _ := core.Compose(tech.N20(), podI, ws)
	fmt.Printf("Compose IO 20nm: pods %d MC %d die %.0f pow %.0f limit %s\n", si2.Pods, si2.MemChannels, si2.DieArea(), si2.Power(), si2.Limit)
	if err := simCheck(ctx, ws); err != nil {
		return err
	}
	return structCheck(ctx, ws)
}

// simCheck compares the statistical simulator against the analytic
// model: one batch per table, fanned out through the engine.
func simCheck(ctx context.Context, ws []workload.Workload) error {
	fmt.Println("== sim vs analytic: OoO 4MB crossbar (16 cores), snoop% target in []")
	cfgs := make([]sim.Config, len(ws))
	for i, w := range ws {
		cfgs[i] = sim.Config{Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.New(noc.Crossbar, 16), DisableSWScaling: true}
	}
	res, err := exp.Sims(ctx, cfgs)
	if err != nil {
		return err
	}
	for i, w := range ws {
		r := res[i]
		d := analytic.NewDesign(tech.OoO, 16, 4, noc.Crossbar)
		fmt.Printf("  %-16s sim %.2f  model %.2f  snoop %.1f%% [%.1f]  miss %.3f  bw %.1fGB/s\n",
			w.Name, r.AppIPC, analytic.ChipIPC(w, d), r.SnoopRatePct, w.SnoopPct, r.MissRatio(), r.OffChipGBs)
	}

	fmt.Println("== sim 64-core pod: mesh vs fbfly vs nocout (normalized to mesh)")
	kinds := []noc.Kind{noc.Mesh, noc.FlattenedButterfly, noc.NOCOut}
	netCfgs := make([]sim.Config, 0, len(ws)*len(kinds))
	for _, w := range ws {
		for _, kind := range kinds {
			cores := 64
			if w.ScaleLimit < cores {
				cores = w.ScaleLimit
			}
			net := noc.New(kind, 64) // full-pod topology
			if kind == noc.NOCOut {
				net.Cores = cores // active cores sit adjacent to the LLC
			}
			netCfgs = append(netCfgs, sim.Config{Workload: w, CoreType: tech.OoO, Cores: cores, LLCMB: 8, Net: net, MemChannels: 4})
		}
	}
	netRes, err := exp.Sims(ctx, netCfgs)
	if err != nil {
		return err
	}
	for i, w := range ws {
		row := netRes[i*len(kinds) : (i+1)*len(kinds)]
		fmt.Printf("  %-16s mesh 1.00  fbfly %.2f  nocout %.2f\n",
			w.Name, row[1].AppIPC/row[0].AppIPC, row[2].AppIPC/row[0].AppIPC)
	}
	return nil
}

// structCheck compares emergent structural-mode cache behaviour against
// the calibrated statistical targets, one engine batch for the suite.
func structCheck(ctx context.Context, ws []workload.Workload) error {
	fmt.Println("== structural mode: emergent L1 MPKI vs calibrated APKI (16c, 4MB) ==")
	cfgs := make([]sim.StructuralConfig, len(ws))
	for i, w := range ws {
		cfgs[i] = sim.StructuralConfig{Workload: w, CoreType: tech.OoO, Cores: 16, LLCMB: 4}
	}
	res, err := exp.Structurals(ctx, cfgs)
	if err != nil {
		return err
	}
	for i, w := range ws {
		r := res[i]
		apki := w.EffectiveAPKI(tech.OoO)
		iT := apki * w.IFetchFrac
		dT := apki - iT
		fmt.Printf("  %-16s L1I %5.1f [%5.1f]  L1D %5.1f [%5.1f]  LLCmiss %4.1f%%  IPC %5.2f  mshrStall %.2f%%\n",
			w.Name, r.L1IMPKI, iT, r.L1DMPKI, dT, r.LLCMissPct, r.AppIPC, r.MSHRStallPct)
	}
	return nil
}
