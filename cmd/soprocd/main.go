// Command soprocd serves the simulator over HTTP: a long-running
// process that runs named experiments and ad-hoc sweeps on one shared
// experiment engine, so concurrent clients exploring overlapping pod
// configurations hit a common memo instead of re-simulating.
//
// Usage:
//
//	soprocd                          listen on :8080
//	soprocd -addr 127.0.0.1:9090     custom listen address
//	soprocd -parallel 8              8-worker engine (default GOMAXPROCS)
//	soprocd -memo-cap 16384          memo capacity in entries (0 = unbounded)
//	soprocd -drain 1m                graceful-shutdown drain window
//	soprocd -peers host:a,host:b     coordinate: shard sweep points across
//	                                 those soprocd replicas by fingerprint
//	soprocd -calibration cal.json    load a cmd/calibrate error-bounding
//	                                 run: anchors serve matching points
//	                                 exactly, certified regions enable
//	                                 tier:"fast" sweep requests
//	soprocd -store                   persist results in the .sostore/ log
//	                                 (-store-dir relocates it): a restart
//	                                 re-warms its shard from disk before
//	                                 taking traffic, the graceful drain
//	                                 flushes, and /statsz grows a "store"
//	                                 section
//	soprocd -rate 50 -burst 100      per-client admission rate in
//	                                 requests/sec with a token-bucket
//	                                 burst (0 = unlimited; clients keyed
//	                                 by X-Soproc-Client, else remote addr)
//	soprocd -queue-depth 64          waiting requests per priority lane
//	                                 once -max-inflight is reached; full
//	                                 lanes shed with 429 + Retry-After
//	                                 (0 = default 128, negative = none)
//	soprocd -max-inflight 32         concurrently admitted requests
//	                                 (0 = 4*GOMAXPROCS)
//	soprocd -request-timeout 5m      per-request deadline for admitted
//	                                 requests (0 = untimed)
//	soprocd -trace-level decisions   record a ring of per-point decision
//	                                 traces (source, replica, retries,
//	                                 queue wait, latency) served by
//	                                 GET /v1/trace; -trace-cap bounds the
//	                                 ring (default 4096)
//
// Endpoints (see internal/serve):
//
//	GET  /healthz              liveness probe
//	GET  /statsz               engine statistics: memo hits, misses,
//	                           evictions, resident size and capacity,
//	                           in-flight work, worker count
//	GET  /metricsz             Prometheus text-format metrics for every
//	                           active subsystem (engine, tier, server,
//	                           plus store/cluster/admit when enabled)
//	GET  /v1/trace             newest decision-trace records (JSON;
//	                           enabled:false without -trace-level)
//	GET  /v1/experiments       registered experiment IDs
//	GET  /v1/exp/{id}          one experiment (or "all"), format=table|csv;
//	                           byte-identical to the soproc CLI's output
//	POST /v1/sweep             batched ad-hoc sim/structural points
//
// With -peers, the daemon becomes a cluster coordinator
// (internal/cluster): each simulator point is consistent-hashed by its
// canonical fingerprint to the replica that owns it, points per replica
// are batched into forwarded /v1/sweep calls, a failed replica's shard
// re-hashes to the next owners, and /statsz grows a "cluster" section.
// Output stays byte-identical to single-node serving; see API.md and
// the DESIGN.md cluster section.
//
// Every request passes through an admission controller
// (internal/admit) before it reaches a handler: -max-inflight requests
// run at once, up to -queue-depth more wait per priority lane —
// interactive /v1/exp requests preempt bulk /v1/sweep work — and
// anything beyond that is shed immediately with 429 Too Many Requests
// and a Retry-After hint instead of queueing without bound. /statsz
// grows an "admit" section (admitted, shed, queue depths per lane).
//
// Unlike the one-shot CLIs, the daemon bounds its memo (-memo-cap):
// least-recently-used results are evicted under capacity pressure, so
// memory stays bounded over an unbounded request stream, while
// in-flight and waited-on entries are pinned and single-flight
// semantics are preserved. On SIGINT/SIGTERM the admission controller
// drains first — new and parked requests get 503 — then the server
// stops accepting, drains in-flight requests for up to -drain, and
// cancels whatever remains through the engine's context plumbing.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"scaleout/internal/admit"
	"scaleout/internal/cluster"
	"scaleout/internal/exp"
	"scaleout/internal/serve"
	"scaleout/internal/store"
	"scaleout/internal/tier"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	memoCap := flag.Int("memo-cap", 16384, "max resident memo entries (0 = unbounded)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain window for in-flight requests")
	peers := flag.String("peers", "", "comma-separated soprocd replicas (host:port) to shard sweep points across; empty = single node")
	calPath := flag.String("calibration", "", "calibration.json from cmd/calibrate: anchors plus certified error regions for tiered evaluation")
	useStore := flag.Bool("store", false, "persist simulator results in -store-dir; a restarted daemon re-warms from the log before taking traffic")
	storeDir := flag.String("store-dir", store.DefaultDir, "persistent result store directory (with -store)")
	rate := flag.Float64("rate", 0, "per-client admission rate in requests/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-client token-bucket burst (0 = derived from -rate)")
	queueDepth := flag.Int("queue-depth", 128, "waiting requests per priority lane once -max-inflight is reached; full lanes shed with 429 (0 = default 128, negative = no queue)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently admitted requests (0 = 4*GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline for admitted requests (0 = untimed)")
	traceLevel := flag.String("trace-level", "off", "decision tracing: off, or decisions to record per-point traces served by GET /v1/trace")
	traceCap := flag.Int("trace-cap", 0, "decision-trace ring capacity (0 = default 4096)")
	flag.Parse()
	switch *traceLevel {
	case "off", "decisions":
	default:
		log.Fatalf("soprocd: -trace-level must be off or decisions, got %q", *traceLevel)
	}

	eng := exp.NewBounded(*parallel, *memoCap)
	srv := serve.New(eng)
	obs := srv.EnableObservability(serve.ObservabilityOptions{
		TraceDecisions: *traceLevel == "decisions",
		TraceCapacity:  *traceCap,
	})
	var st *store.Store
	if *useStore {
		var err error
		st, err = store.Open(*storeDir)
		if err != nil {
			log.Fatalf("soprocd: %v", err)
		}
		eng.SetStore(st)
		srv.SetStoreStats(func() any { return st.Stats() })
		st.RegisterMetrics(obs.Registry)
		log.Printf("soprocd: store %s: %d results re-warmed from disk", *storeDir, st.Len())
	}
	if *calPath != "" {
		cal, err := tier.Load(*calPath)
		if err != nil {
			log.Fatalf("soprocd: %v", err)
		}
		srv.SetTier(tier.New(cal, tier.Exact))
		log.Printf("soprocd: calibration %s: %d regions, %d anchors",
			*calPath, len(cal.Regions), len(cal.SimAnchors)+len(cal.StructuralAnchors))
	}
	if *peers != "" {
		coord, err := cluster.New(strings.Split(*peers, ","))
		if err != nil {
			log.Fatalf("soprocd: %v", err)
		}
		eng.SetRoute(coord.Route)
		srv.SetClusterStats(func() any { return coord.Stats() })
		coord.RegisterMetrics(obs.Registry)
		log.Printf("soprocd: coordinating %d replicas: %s", len(strings.Split(*peers, ",")), *peers)
	}

	// Every request is admitted (or shed) before it reaches a handler;
	// /healthz, /statsz, /metricsz, and /v1/trace bypass admission so a
	// saturated daemon stays observable.
	ctrl := admit.New(admit.Options{
		Rate:           *rate,
		Burst:          *burst,
		MaxInFlight:    *maxInflight,
		QueueDepth:     *queueDepth,
		RequestTimeout: *requestTimeout,
	})
	srv.SetAdmitStats(func() any { return ctrl.Stats() })
	ctrl.RegisterMetrics(obs.Registry)

	// Request contexts derive from baseCtx; it stays live through the
	// drain window so in-flight sweeps finish, then cancels the rest.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	hs := &http.Server{
		Addr:        *addr,
		Handler:     ctrl.Middleware(srv.Handler()),
		BaseContext: func(net.Listener) context.Context { return baseCtx },
		// A stalled client must not pin a connection (and its
		// goroutine) forever; response writes are left untimed because
		// a long experiment legitimately streams late.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("soprocd: shutting down, draining for up to %s", *drain)
		// Refuse new and parked work first (503 "draining") so the
		// server's drain window is spent finishing what is already
		// running, not admitting more.
		ctrl.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("soprocd: drain window expired, cancelling in-flight work: %v", err)
		}
		cancelBase()
	}()

	log.Printf("soprocd: listening on %s (%d workers, memo capacity %d)",
		*addr, eng.Workers(), eng.MemoCapacity())
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("soprocd: %v", err)
	}
	<-done
	if st != nil {
		// The drain window has passed: every result computed before
		// shutdown is in the log; sync it so the restart's warm start
		// sees all of them.
		ss := st.Stats()
		if err := st.Close(); err != nil {
			log.Printf("soprocd: store: %v", err)
		} else {
			log.Printf("soprocd: store flushed: %d entries (%d appended this run), %d bytes",
				ss.Entries, ss.Appends, ss.Bytes)
		}
	}
	es := eng.Stats()
	log.Printf("soprocd: served %d memo hits, %d computations, %d from store, %d evictions",
		es.Hits, es.Misses, es.StoreHits, es.Evictions)
}
