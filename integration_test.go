package scaleout

import (
	"testing"

	"scaleout/internal/core"
	"scaleout/internal/noc"
	"scaleout/internal/sim"
	"scaleout/internal/tech"
	"scaleout/internal/workload"
)

// TestQuickstartFlow is the README's quickstart as an executable test:
// sweep the design space, select a pod with the near-optimal rule,
// compose the Scale-Out Processor, and land on the thesis's headline
// configuration.
func TestQuickstartFlow(t *testing.T) {
	ws := workload.Suite()
	node := tech.N40()

	space := core.SweepSpace{
		Core:     tech.OoO,
		MaxCores: 64,
		LLCSizes: []float64{1, 2, 4, 8},
		Nets:     []noc.Kind{noc.Crossbar},
	}
	points := core.Sweep(space, node, ws)
	pod, err := core.NearOptimal(points, 0.05, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pod.Pod.Cores != 16 {
		t.Fatalf("selected pod %v, expected a 16-core pod", pod.Pod)
	}

	chip, err := core.Compose(node, pod.Pod, ws)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Pods != 2 {
		t.Fatalf("composed %d pods at 40nm, thesis composes 2", chip.Pods)
	}
	if chip.DieArea() > node.MaxDieAreaMM2 || chip.Power() > node.TDPWatts {
		t.Fatalf("chip exceeds budgets: %.0fmm2 %.0fW", chip.DieArea(), chip.Power())
	}

	// Technology scaling without redesign: the same pod, more of them.
	chip20, err := core.Compose(tech.N20(), pod.Pod, ws)
	if err != nil {
		t.Fatal(err)
	}
	if chip20.Pods <= chip.Pods {
		t.Fatalf("20nm composed %d pods, not more than 40nm's %d", chip20.Pods, chip.Pods)
	}
	if chip20.PD(ws) <= chip.PD(ws) {
		t.Fatal("technology scaling did not improve performance density")
	}
}

// TestSimulatorAgreesWithMethodology closes the loop end to end: the pod
// the methodology selects, when handed to the cycle simulator, delivers
// per-core performance within the validation window of the analytic
// prediction that selected it.
func TestSimulatorAgreesWithMethodology(t *testing.T) {
	ws := workload.Suite()
	pod := core.Pod{Core: tech.OoO, Cores: 16, LLCMB: 4, Net: noc.Crossbar}
	predicted := pod.IPC(ws)

	var measured float64
	for _, w := range ws {
		r, err := sim.Run(sim.Config{
			Workload: w, CoreType: pod.Core, Cores: pod.Cores, LLCMB: pod.LLCMB,
			Net: noc.New(noc.Crossbar, pod.Cores), DisableSWScaling: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		measured += r.AppIPC
	}
	measured /= float64(len(ws))

	if ratio := measured / predicted; ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("simulator %.2f vs analytic %.2f (ratio %.2f) outside the Fig 3.3 window",
			measured, predicted, ratio)
	}
}
